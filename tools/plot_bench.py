#!/usr/bin/env python3
"""Render the BENCH_phase2.json perf trajectory.

Every harness bench run appends one JSON object per line to
``BENCH_phase2.json`` (see bench/harness.cc). This tool turns that
append-only trajectory into a readable report:

  * with matplotlib available (or --png given): a two-panel figure —
    phase-2 seconds per record (trajectory, one line per method) and the
    phase-2 time breakdown (partition / coloring / invalid) for the most
    recent record of each (method, scale) cell;
  * otherwise (or with --ascii): an ASCII table plus a sparkline of the
    trajectory, so the tool works on a bare CI box.

Usage:
  tools/plot_bench.py [BENCH_phase2.json] [--png out.png] [--ascii]
"""

import argparse
import json
import sys

SPARK_CHARS = "▁▂▃▄▅▆▇█"


def load_records(path):
    records = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            for line_no, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError as e:
                    print(f"warning: {path}:{line_no}: skipping bad record ({e})",
                          file=sys.stderr)
    except OSError as e:
        sys.exit(f"error: cannot read {path}: {e}")
    if not records:
        sys.exit(f"error: no records in {path}")
    return records


def by_method(records):
    methods = {}
    for i, r in enumerate(records):
        methods.setdefault(r.get("method", "?"), []).append((i, r))
    return methods


def sparkline(values):
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    return "".join(
        SPARK_CHARS[int((v - lo) / span * (len(SPARK_CHARS) - 1))]
        for v in values)


def ascii_report(records):
    methods = by_method(records)
    print(f"{len(records)} records, methods: {', '.join(sorted(methods))}\n")
    header = (f"{'method':<14} {'scale':>6} {'persons':>8} {'p2 s':>9} "
              f"{'part s':>8} {'color s':>8} {'inval s':>8} {'new R2':>7}")
    print(header)
    print("-" * len(header))
    # Latest record per (method, scale): the current state of each cell.
    latest = {}
    for i, r in enumerate(records):
        latest[(r.get("method", "?"), r.get("scale", 0.0))] = r
    for (method, scale), r in sorted(latest.items()):
        print(f"{method:<14} {scale:>6.2f} {r.get('persons', 0):>8} "
              f"{r.get('phase2_seconds', 0.0):>9.4f} "
              f"{r.get('partition_seconds', 0.0):>8.4f} "
              f"{r.get('coloring_seconds', 0.0):>8.4f} "
              f"{r.get('invalid_seconds', 0.0):>8.4f} "
              f"{r.get('new_r2_tuples', 0):>7}")
    print("\nphase-2 seconds trajectory (append order):")
    for method, recs in sorted(methods.items()):
        values = [r.get("phase2_seconds", 0.0) for _, r in recs]
        print(f"  {method:<14} {sparkline(values)}  "
              f"[{min(values):.4f} .. {max(values):.4f}]")


def png_report(records, out_path):
    import matplotlib
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    methods = by_method(records)
    fig, (ax_traj, ax_break) = plt.subplots(1, 2, figsize=(12, 4.5))

    for method, recs in sorted(methods.items()):
        xs = [i for i, _ in recs]
        ys = [r.get("phase2_seconds", 0.0) for _, r in recs]
        ax_traj.plot(xs, ys, marker="o", markersize=3, label=method)
    ax_traj.set_xlabel("record (append order)")
    ax_traj.set_ylabel("phase-2 seconds")
    ax_traj.set_title("phase-2 trajectory")
    ax_traj.legend()
    ax_traj.grid(True, alpha=0.3)

    latest = {}
    for i, r in enumerate(records):
        latest[(r.get("method", "?"), r.get("scale", 0.0))] = r
    cells = sorted(latest.items())
    labels = [f"{m}@{s:g}x" for (m, s), _ in cells]
    parts = [r.get("partition_seconds", 0.0) for _, r in cells]
    colors_ = [r.get("coloring_seconds", 0.0) for _, r in cells]
    invalids = [r.get("invalid_seconds", 0.0) for _, r in cells]
    xs = range(len(cells))
    ax_break.bar(xs, parts, label="partition")
    ax_break.bar(xs, colors_, bottom=parts, label="coloring")
    bottoms = [p + c for p, c in zip(parts, colors_)]
    ax_break.bar(xs, invalids, bottom=bottoms, label="invalid repair")
    ax_break.set_xticks(list(xs))
    ax_break.set_xticklabels(labels, rotation=45, ha="right", fontsize=7)
    ax_break.set_ylabel("seconds")
    ax_break.set_title("latest phase-2 breakdown per (method, scale)")
    ax_break.legend()
    ax_break.grid(True, axis="y", alpha=0.3)

    fig.tight_layout()
    fig.savefig(out_path, dpi=150)
    print(f"wrote {out_path}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trajectory", nargs="?", default="BENCH_phase2.json",
                        help="JSON-lines trajectory file (default: %(default)s)")
    parser.add_argument("--png", metavar="OUT",
                        help="write a PNG figure (requires matplotlib)")
    parser.add_argument("--ascii", action="store_true",
                        help="force the ASCII report even with matplotlib")
    args = parser.parse_args()

    records = load_records(args.trajectory)
    if not args.ascii:
        try:
            png_report(records, args.png or "BENCH_phase2.png")
            return
        except ImportError:
            if args.png:
                sys.exit("error: --png requires matplotlib")
            print("matplotlib not available; falling back to ASCII report\n",
                  file=sys.stderr)
    ascii_report(records)


if __name__ == "__main__":
    main()
