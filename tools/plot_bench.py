#!/usr/bin/env python3
"""Render the BENCH_phase2.json / BENCH_phase1.json perf trajectories.

Every harness bench run appends one JSON object per line to
``BENCH_phase2.json`` (see bench/harness.cc), and every bench_ilp_kernels
run appends phase-1 solver-kernel records (with a ``kernel`` field) to
``BENCH_phase1.json``. This tool turns those append-only trajectories into
a readable report:

  * with matplotlib available (or --png given): a two-panel figure —
    phase-2 seconds per record (trajectory, one line per method) and the
    phase-2 time breakdown (partition / coloring / invalid) for the most
    recent record of each (method, scale) cell; phase-1 records render as
    dense-vs-sparse speedup bars per (kernel, scale);
  * otherwise (or with --ascii): an ASCII table plus a sparkline of the
    trajectory, so the tool works on a bare CI box.

Record type is auto-detected *per record*, so one trajectory file may mix
kinds: phase-1 solver records carry ``kernel`` + ``sparse_seconds``,
micro-kernel records (appended by bench_micro_kernels, and diffed by
tools/bench_diff.py in the CI perf gate) carry ``kernel`` + ``seconds``,
and harness phase-2 records carry ``method``. Any mix of trajectory files
can be passed:

  tools/plot_bench.py [BENCH_phase2.json [BENCH_phase1.json ...]]
                      [--png out.png] [--ascii]
"""

import argparse
import json
import sys

SPARK_CHARS = "▁▂▃▄▅▆▇█"


def load_records(path):
    records = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            for line_no, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError as e:
                    print(f"warning: {path}:{line_no}: skipping bad record ({e})",
                          file=sys.stderr)
    except OSError as e:
        sys.exit(f"error: cannot read {path}: {e}")
    if not records:
        sys.exit(f"error: no records in {path}")
    return records


def by_method(records):
    methods = {}
    for i, r in enumerate(records):
        methods.setdefault(r.get("method", "?"), []).append((i, r))
    return methods


def sparkline(values):
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    return "".join(
        SPARK_CHARS[int((v - lo) / span * (len(SPARK_CHARS) - 1))]
        for v in values)


def ascii_report(records):
    methods = by_method(records)
    print(f"{len(records)} records, methods: {', '.join(sorted(methods))}\n")
    header = (f"{'method':<14} {'scale':>6} {'persons':>8} {'p2 s':>9} "
              f"{'part s':>8} {'color s':>8} {'inval s':>8} {'new R2':>7}")
    print(header)
    print("-" * len(header))
    # Latest record per (method, scale): the current state of each cell.
    latest = {}
    for i, r in enumerate(records):
        latest[(r.get("method", "?"), r.get("scale", 0.0))] = r
    for (method, scale), r in sorted(latest.items()):
        print(f"{method:<14} {scale:>6.2f} {r.get('persons', 0):>8} "
              f"{r.get('phase2_seconds', 0.0):>9.4f} "
              f"{r.get('partition_seconds', 0.0):>8.4f} "
              f"{r.get('coloring_seconds', 0.0):>8.4f} "
              f"{r.get('invalid_seconds', 0.0):>8.4f} "
              f"{r.get('new_r2_tuples', 0):>7}")
    print("\nphase-2 seconds trajectory (append order):")
    for method, recs in sorted(methods.items()):
        values = [r.get("phase2_seconds", 0.0) for _, r in recs]
        print(f"  {method:<14} {sparkline(values)}  "
              f"[{min(values):.4f} .. {max(values):.4f}]")


def png_report(records, out_path):
    import matplotlib
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    methods = by_method(records)
    fig, (ax_traj, ax_break) = plt.subplots(1, 2, figsize=(12, 4.5))

    for method, recs in sorted(methods.items()):
        xs = [i for i, _ in recs]
        ys = [r.get("phase2_seconds", 0.0) for _, r in recs]
        ax_traj.plot(xs, ys, marker="o", markersize=3, label=method)
    ax_traj.set_xlabel("record (append order)")
    ax_traj.set_ylabel("phase-2 seconds")
    ax_traj.set_title("phase-2 trajectory")
    ax_traj.legend()
    ax_traj.grid(True, alpha=0.3)

    latest = {}
    for i, r in enumerate(records):
        latest[(r.get("method", "?"), r.get("scale", 0.0))] = r
    cells = sorted(latest.items())
    labels = [f"{m}@{s:g}x" for (m, s), _ in cells]
    parts = [r.get("partition_seconds", 0.0) for _, r in cells]
    colors_ = [r.get("coloring_seconds", 0.0) for _, r in cells]
    invalids = [r.get("invalid_seconds", 0.0) for _, r in cells]
    xs = range(len(cells))
    ax_break.bar(xs, parts, label="partition")
    ax_break.bar(xs, colors_, bottom=parts, label="coloring")
    bottoms = [p + c for p, c in zip(parts, colors_)]
    ax_break.bar(xs, invalids, bottom=bottoms, label="invalid repair")
    ax_break.set_xticks(list(xs))
    ax_break.set_xticklabels(labels, rotation=45, ha="right", fontsize=7)
    ax_break.set_ylabel("seconds")
    ax_break.set_title("latest phase-2 breakdown per (method, scale)")
    ax_break.legend()
    ax_break.grid(True, axis="y", alpha=0.3)

    fig.tight_layout()
    fig.savefig(out_path, dpi=150)
    print(f"wrote {out_path}")


def phase1_ascii_report(records):
    print(f"{len(records)} phase-1 records\n")
    header = (f"{'kernel':<16} {'bins':>5} {'combos':>6} {'ccs':>4} "
              f"{'thr':>3} {'dense s':>9} {'sparse s':>9} {'speedup':>8}")
    print(header)
    print("-" * len(header))
    # Latest record per (kernel, scale, threads) cell.
    latest = {}
    for r in records:
        key = (r.get("kernel", "?"), r.get("bins", 0), r.get("combos", 0),
               r.get("ccs", 0), r.get("threads", 1))
        latest[key] = r
    for (kernel, bins, combos, ccs, threads), r in sorted(latest.items()):
        print(f"{kernel:<16} {bins:>5} {combos:>6} {ccs:>4} {threads:>3} "
              f"{r.get('dense_seconds', 0.0):>9.4f} "
              f"{r.get('sparse_seconds', 0.0):>9.4f} "
              f"{r.get('speedup', 0.0):>7.1f}x")
    print("\nilp_solve speedup trajectory (append order):")
    values = [r.get("speedup", 0.0) for r in records
              if r.get("kernel") == "ilp_solve"]
    if values:
        print(f"  {sparkline(values)}  [{min(values):.1f}x .. {max(values):.1f}x]")


def phase1_png_report(records, out_path):
    import matplotlib
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    latest = {}
    for r in records:
        if r.get("kernel") in ("model_build",):
            continue
        key = (r.get("kernel", "?"), r.get("bins", 0), r.get("threads", 1))
        latest[key] = r
    cells = sorted(latest.items())
    labels = [f"{k}@{b}bins" + (f"/t{t}" if k == "ilp_decomposed" else "")
              for (k, b, t), _ in cells]
    speedups = [r.get("speedup", 0.0) for _, r in cells]
    fig, ax = plt.subplots(figsize=(max(6, len(cells) * 0.7), 4.5))
    ax.bar(range(len(cells)), speedups)
    ax.axhline(5.0, color="red", linestyle="--", linewidth=1,
               label="5x acceptance bar")
    ax.set_xticks(range(len(cells)))
    ax.set_xticklabels(labels, rotation=45, ha="right", fontsize=7)
    ax.set_ylabel("speedup vs dense tableau")
    ax.set_title("phase-1 ILP kernels: sparse/decomposed vs dense")
    ax.set_yscale("log")
    ax.legend()
    ax.grid(True, axis="y", alpha=0.3)
    fig.tight_layout()
    fig.savefig(out_path, dpi=150)
    print(f"wrote {out_path}")


def micro_ascii_report(records):
    print(f"{len(records)} micro-kernel records\n")
    header = f"{'kernel':<36} {'n':>8} {'seconds':>12}"
    print(header)
    print("-" * len(header))
    # Latest record per (kernel, n): the current state of each cell.
    latest = {}
    for r in records:
        latest[(r.get("kernel", "?"), r.get("n", 0))] = r
    for (kernel, n), r in sorted(latest.items()):
        print(f"{kernel:<36} {n:>8} {r.get('seconds', 0.0):>12.6f}")
    print("\nper-kernel trajectory at the largest n (append order):")
    by_kernel = {}
    for r in records:
        by_kernel.setdefault(r.get("kernel", "?"), []).append(r)
    for kernel, recs in sorted(by_kernel.items()):
        largest = max(r.get("n", 0) for r in recs)
        values = [r.get("seconds", 0.0) for r in recs
                  if r.get("n", 0) == largest]
        print(f"  {kernel:<36} n={largest:<7} {sparkline(values)}  "
              f"[{min(values):.6f} .. {max(values):.6f}]")


def split_kinds(records):
    """Routes each record to its report: micro / phase1 / phase2."""
    kinds = {"micro": [], "phase1": [], "phase2": []}
    for r in records:
        if "kernel" in r and "sparse_seconds" in r:
            kinds["phase1"].append(r)
        elif "kernel" in r and "seconds" in r:
            kinds["micro"].append(r)
        else:
            kinds["phase2"].append(r)
    return kinds


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trajectories", nargs="*",
                        default=["BENCH_phase2.json"],
                        help="JSON-lines trajectory files "
                             "(default: BENCH_phase2.json)")
    parser.add_argument("--png", metavar="OUT",
                        help="write a PNG figure (requires matplotlib)")
    parser.add_argument("--ascii", action="store_true",
                        help="force the ASCII report even with matplotlib")
    args = parser.parse_args()

    for i, path in enumerate(args.trajectories):
        kinds = split_kinds(load_records(path))
        if i > 0:
            print()
        print(f"== {path} ==")
        # Micro-kernel records always render as ASCII (they are the CI gate's
        # input; bench_diff.py is the machine-facing consumer).
        if kinds["micro"]:
            micro_ascii_report(kinds["micro"])
        for kind in ("phase1", "phase2"):
            records = kinds[kind]
            if not records:
                continue
            phase1 = kind == "phase1"
            if not args.ascii:
                try:
                    out = args.png or ("BENCH_phase1.png" if phase1
                                       else "BENCH_phase2.png")
                    if args.png and len(args.trajectories) > 1:
                        # One figure per file: suffix the requested name so a
                        # multi-file invocation does not overwrite itself.
                        stem, dot, ext = args.png.rpartition(".")
                        out = (f"{stem}.{i}.{ext}" if dot
                               else f"{args.png}.{i}")
                    if phase1:
                        phase1_png_report(records, out)
                    else:
                        png_report(records, out)
                    continue
                except ImportError:
                    if args.png:
                        sys.exit("error: --png requires matplotlib")
                    print("matplotlib not available; falling back to ASCII "
                          "report\n", file=sys.stderr)
            if phase1:
                phase1_ascii_report(records)
            else:
                ascii_report(records)


if __name__ == "__main__":
    main()
