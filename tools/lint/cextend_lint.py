#!/usr/bin/env python3
"""cextend-lint: project-specific determinism & error-discipline checks.

The repo's correctness story rests on two hand-enforced invariants: solves
are bit-identical at any thread count, and every failure path surfaces as a
non-OK Status. This lint makes both machine-checked at the source level,
before any test runs. See tools/lint/README.md for the full catalog.

Checks
  D1 unordered-iteration  Range-for / iterator loops over std::unordered_map
                          or std::unordered_set in result-affecting code
                          (src/core, src/graph, src/ilp, src/constraints).
                          Hash order leaks into the output unless the loop is
                          order-independent. Suppressed by the sorted-drain
                          idiom (a std::sort over the drained elements inside
                          or just after the loop) or an explicit waiver.
  D2 banned-primitive     Nondeterminism primitives outside util/rng.{h,cc}:
                          std::random_device, rand()/srand(), time(),
                          std::hash over pointer types, associative
                          containers keyed on raw pointers.
  S1 status-ignored       Call sites that discard a Status/StatusOr return.
                          [[nodiscard]] covers this on clang/gcc builds; the
                          lint keeps the rule enforced for other compilers
                          and in code the build does not compile.
  T1 static-state         Mutable file-scope / static / thread_local state in
                          solver translation units (.cc files in the
                          result-affecting directories).

Waivers
  A finding is waived by a comment on the same line or up to 3 lines above:
      // cextend-lint: <check-slug>-ok(<reason>)
  e.g. // cextend-lint: unordered-iteration-ok(commutative accumulation)
  The reason is mandatory; an empty reason keeps the finding alive. S1 is
  additionally suppressed by an explicit `(void)` cast.

Engines
  --engine clang   libclang AST analysis (exact; needs the `clang` python
                   package and a libclang shared library).
  --engine token   token-stream heuristics (no dependencies; the default
                   fallback). Declarations are resolved per file first, then
                   across the scanned set, so cross-file member iteration is
                   still caught when the member name is unambiguous.
  --engine auto    clang when importable, token otherwise (default).

Usage
  tools/lint/cextend_lint.py                 # lint src/ under the repo root
  tools/lint/cextend_lint.py --root DIR      # lint DIR/src (fixtures use this)
  tools/lint/cextend_lint.py --checks D1,D2  # subset
  tools/lint/cextend_lint.py --list-checks

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import os
import re
import sys

# Check id -> (waiver slug, one-line description).
CHECKS = {
    "D1": ("unordered-iteration",
           "iteration over std::unordered_{map,set} in result-affecting code"),
    "D2": ("banned-primitive",
           "nondeterminism primitive outside util/rng.{h,cc}"),
    "S1": ("status-ignored", "discarded Status/StatusOr return value"),
    "T1": ("static-state",
           "mutable file-scope/static state in a solver translation unit"),
}

# Directories (relative to the scanned root) whose code is result-affecting:
# any ordering leak here changes the synthesized database.
RESULT_AFFECTING = ("src/core", "src/graph", "src/ilp", "src/constraints")

# The one blessed home for randomness primitives.
RNG_EXEMPT = ("src/util/rng.h", "src/util/rng.cc")

# Lines scanned above a finding for a waiver comment (multi-line comments).
WAIVER_WINDOW = 3

# Lines after a D1 loop in which a std::sort counts as the sorted-drain idiom.
SORT_WINDOW = 5

WAIVER_RE = re.compile(r"cextend-lint:\s*([a-z0-9-]+)-ok\((\S?)")


class Finding:
    def __init__(self, path, line, check, message, suppressed=None):
        self.path = path
        self.line = line
        self.check = check
        self.message = message
        self.suppressed = suppressed  # None, "waiver", or "sorted-drain"

    def __str__(self):
        slug = CHECKS[self.check][0]
        return (f"{self.path}:{self.line}: [{self.check} {slug}] "
                f"{self.message}")


# ---------------------------------------------------------------------------
# Source model shared by both engines: raw text, a comment/string-scrubbed
# twin with identical line structure, and the waiver lines.
# ---------------------------------------------------------------------------

class SourceFile:
    def __init__(self, root, rel):
        self.rel = rel.replace(os.sep, "/")
        self.abspath = os.path.join(root, rel)
        with open(self.abspath, "r", encoding="utf-8", errors="replace") as f:
            self.text = f.read()
        self.scrubbed = scrub(self.text)
        self.lines = self.scrubbed.split("\n")
        # line number -> set of waiver slugs declared on that line.
        self.waivers = {}
        for i, raw in enumerate(self.text.split("\n"), 1):
            for m in WAIVER_RE.finditer(raw):
                slug, first = m.group(1), m.group(2)
                if not first or first == ")":
                    continue  # reason is mandatory
                self.waivers.setdefault(i, set()).add(slug)

    def line_of(self, offset):
        return self.scrubbed.count("\n", 0, offset) + 1

    def waived(self, line, slug):
        for k in range(line, max(0, line - WAIVER_WINDOW - 1), -1):
            if slug in self.waivers.get(k, set()):
                return True
        return False

    def in_result_affecting(self):
        return self.rel.startswith(tuple(d + "/" for d in RESULT_AFFECTING))

    def is_rng_exempt(self):
        return self.rel in RNG_EXEMPT


def scrub(text):
    """Blanks comments and string/char literals, preserving newlines."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(" ")
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def match_forward(text, start, open_ch, close_ch):
    """Offset just past the bracket matching text[start] (which must be
    open_ch), or -1. Understands '>>' closing two template levels."""
    depth = 0
    i = start
    while i < len(text):
        c = text[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return -1


# ---------------------------------------------------------------------------
# Token engine
# ---------------------------------------------------------------------------

UNORDERED_DECL_RE = re.compile(r"\b(?:std\s*::\s*)?unordered_(?:map|set)\s*<")
ORDERED_DECL_RE = re.compile(
    r"\b(?:std\s*::\s*)?(?:map|set|vector|deque|array|list)\s*<")
DECL_NAME_RE = re.compile(r"\s*&?\s*([A-Za-z_]\w*)\s*(?=[;={(,)\[]|$)")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(")
TAIL_IDENT_RE = re.compile(r"([A-Za-z_]\w*)\s*$")
BEGIN_CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\.\s*c?begin\s*\(")
SORT_RE = re.compile(r"\b(?:std\s*::\s*)?(?:stable_)?sort\s*\(")

BANNED_PATTERNS = [
    (re.compile(r"\bstd\s*::\s*random_device\b"), "std::random_device"),
    (re.compile(r"\bs?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\btime\s*\("), "time()"),
    (re.compile(r"\bstd\s*::\s*hash\s*<[^>;]*\*"), "std::hash over a pointer"),
    (re.compile(r"\b(?:unordered_)?(?:map|set)\s*<\s*(?:[\w:]|\s)*\*"),
     "associative container keyed on a raw pointer"),
]

STATUS_FN_RES = [
    re.compile(r"\bStatus\s+(?:[A-Za-z_]\w*\s*::\s*)*([A-Za-z_]\w*)\s*\("),
    re.compile(r"\bStatusOr\s*<[^;{}()]*>\s*"
               r"(?:[A-Za-z_]\w*\s*::\s*)*([A-Za-z_]\w*)\s*\("),
]

CALL_STMT_RE = re.compile(
    r"[;{}]\s*(\(\s*void\s*\)\s*)?"
    r"((?:[A-Za-z_]\w*\s*(?:\.|->|::)\s*)*)([A-Za-z_]\w*)\s*\(")

STATIC_RE = re.compile(r"\b(static|thread_local)\b")
KEYWORDS_NOT_CALLS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "assert",
    "alignof", "decltype", "new", "delete", "co_return", "co_await",
}


def collect_declarations(src):
    """(unordered_names, ordered_names) declared in this file."""
    unordered, ordered = set(), set()
    for regex, bucket in ((UNORDERED_DECL_RE, unordered),
                          (ORDERED_DECL_RE, ordered)):
        for m in regex.finditer(src.scrubbed):
            open_angle = src.scrubbed.find("<", m.start())
            end = match_forward(src.scrubbed, open_angle, "<", ">")
            if end < 0:
                continue
            name_m = DECL_NAME_RE.match(src.scrubbed, end)
            if name_m:
                bucket.add(name_m.group(1))
    return unordered, ordered


def loop_extent(src, header_end):
    """(first_line, last_line) of the loop whose header ends at header_end."""
    first = src.line_of(header_end)
    i = header_end
    while i < len(src.scrubbed) and src.scrubbed[i].isspace():
        i += 1
    if i < len(src.scrubbed) and src.scrubbed[i] == "{":
        close = match_forward(src.scrubbed, i, "{", "}")
        return first, src.line_of(close if close > 0 else i)
    semi = src.scrubbed.find(";", i)
    return first, src.line_of(semi if semi >= 0 else i)


def has_sort_after(src, last_line):
    window = "\n".join(src.lines[last_line - 1:last_line + SORT_WINDOW])
    return bool(SORT_RE.search(window))


def is_unordered_name(name, src, local_unordered, local_ordered,
                      global_unordered, global_ordered):
    if name in local_ordered and name not in local_unordered:
        return False
    if name in local_unordered:
        return True
    # Cross-file member/variable: only when the name is globally unambiguous.
    return name in global_unordered and name not in global_ordered


def check_d1(src, global_unordered, global_ordered, findings):
    local_unordered, local_ordered = collect_declarations(src)

    def resolve(name):
        return is_unordered_name(name, src, local_unordered, local_ordered,
                                 global_unordered, global_ordered)

    def emit(line, last_line, what):
        suppressed = None
        if src.waived(line, CHECKS["D1"][0]):
            suppressed = "waiver"
        elif has_sort_after(src, last_line):
            suppressed = "sorted-drain"
        findings.append(Finding(
            src.rel, line, "D1",
            f"{what} iterates an unordered container; hash order can leak "
            f"into results — sort, drain into a sorted vector, or waive with "
            f"// cextend-lint: unordered-iteration-ok(<reason>)",
            suppressed))

    for m in RANGE_FOR_RE.finditer(src.scrubbed):
        open_paren = src.scrubbed.find("(", m.start())
        end = match_forward(src.scrubbed, open_paren, "(", ")")
        if end < 0:
            continue
        header = src.scrubbed[open_paren + 1:end - 1]
        # Top-level ':' (range-for), ignoring '::'.
        depth = 0
        colon = -1
        k = 0
        while k < len(header):
            c = header[k]
            if c in "(<[":
                depth += 1
            elif c in ")>]":
                depth -= 1
            elif c == ":" and depth == 0:
                if k + 1 < len(header) and header[k + 1] == ":":
                    k += 2
                    continue
                if k > 0 and header[k - 1] == ":":
                    k += 1
                    continue
                colon = k
                break
            k += 1
        if colon < 0:
            continue
        range_expr = header[colon + 1:].strip()
        line = src.line_of(m.start())
        _, last_line = loop_extent(src, end)
        if UNORDERED_DECL_RE.search(range_expr):
            emit(line, last_line, "range-for")
            continue
        tail = TAIL_IDENT_RE.search(range_expr)
        if tail and resolve(tail.group(1)):
            emit(line, last_line, "range-for")

    for m in BEGIN_CALL_RE.finditer(src.scrubbed):
        if resolve(m.group(1)):
            line = src.line_of(m.start())
            emit(line, line, f"`{m.group(1)}.begin()`")


def check_d2(src, findings):
    for regex, what in BANNED_PATTERNS:
        for m in regex.finditer(src.scrubbed):
            line = src.line_of(m.start())
            suppressed = ("waiver" if src.waived(line, CHECKS["D2"][0])
                          else None)
            findings.append(Finding(
                src.rel, line, "D2",
                f"{what} is banned outside util/rng.{{h,cc}}: route all "
                f"randomness through the seeded Rng so runs stay "
                f"reproducible",
                suppressed))


NON_STATUS_FN_RE = re.compile(
    r"\b(?:void|bool|int|unsigned|size_t|u?int\d+_t|double|float|auto|char)"
    r"\s+[&*]?\s*(?:[A-Za-z_]\w*\s*::\s*)*([A-Za-z_]\w*)\s*\(")


def collect_status_functions(sources):
    names = set()
    for src in sources:
        for regex in STATUS_FN_RES:
            for m in regex.finditer(src.scrubbed):
                names.add(m.group(1))
    return names - KEYWORDS_NOT_CALLS


def check_s1(src, status_fns, findings):
    # A same-file declaration with a non-Status return type wins over the
    # cross-file name table (e.g. a local void Begin() vs RowSink::Begin()).
    local_non_status = {m.group(1)
                        for m in NON_STATUS_FN_RE.finditer(src.scrubbed)}
    for m in CALL_STMT_RE.finditer(src.scrubbed):
        void_cast, chain, callee = m.group(1), m.group(2), m.group(3)
        if callee not in status_fns or callee in local_non_status:
            continue
        if chain.strip().startswith("Status"):
            continue  # Status::Ok() etc. inside an expression statement
        open_paren = src.scrubbed.find("(", m.end() - 1)
        end = match_forward(src.scrubbed, open_paren, "(", ")")
        if end < 0:
            continue
        rest = src.scrubbed[end:end + 8].lstrip()
        if not rest.startswith(";"):
            continue  # part of a larger expression; result is consumed
        line = src.line_of(open_paren)
        suppressed = None
        if void_cast:
            suppressed = "waiver"
        elif src.waived(line, CHECKS["S1"][0]):
            suppressed = "waiver"
        findings.append(Finding(
            src.rel, line, "S1",
            f"result of Status-returning `{callee}(...)` is discarded; "
            f"check it, propagate it, or cast to void with a reason",
            suppressed))


def check_t1(src, findings):
    for m in STATIC_RE.finditer(src.scrubbed):
        tail = src.scrubbed[m.end():]
        head = ""
        for c in tail:
            if c in ";{=(":
                head += c
                break
            head += c
        if head.endswith("("):
            continue  # function declaration/definition
        if re.search(r"\bconst(expr|eval|init)?\b", head):
            continue
        if not re.search(r"[A-Za-z_]", head[:-1] if head else ""):
            continue
        line = src.line_of(m.start())
        suppressed = ("waiver" if src.waived(line, CHECKS["T1"][0]) else None)
        findings.append(Finding(
            src.rel, line, "T1",
            f"mutable {m.group(1)} state in a solver translation unit makes "
            f"solves order- and history-dependent; pass state explicitly or "
            f"waive with // cextend-lint: static-state-ok(<reason>)",
            suppressed))


def run_token_engine(sources, enabled):
    findings = []
    global_unordered, global_ordered = set(), set()
    for src in sources:
        u, o = collect_declarations(src)
        global_unordered |= u
        global_ordered |= o
    status_fns = (collect_status_functions(sources)
                  if "S1" in enabled else set())
    for src in sources:
        if "D1" in enabled and src.in_result_affecting():
            check_d1(src, global_unordered, global_ordered, findings)
        if "D2" in enabled and not src.is_rng_exempt():
            check_d2(src, findings)
        if "S1" in enabled:
            check_s1(src, status_fns, findings)
        if ("T1" in enabled and src.in_result_affecting()
                and src.rel.endswith(".cc")):
            check_t1(src, findings)
    return findings


# ---------------------------------------------------------------------------
# libclang engine
# ---------------------------------------------------------------------------

def load_libclang():
    try:
        from clang import cindex  # noqa: F401
        index = cindex.Index.create()
        return cindex, index
    except Exception:
        return None, None


def run_clang_engine(cindex, index, sources, enabled, include_root):
    """AST-exact D1/S1/T1 (D2 stays token-based; it is purely lexical)."""
    findings = []
    args = ["-std=c++20", "-x", "c++", f"-I{include_root}"]
    K = cindex.CursorKind

    def type_is_unordered(t):
        spelling = t.get_canonical().spelling
        return "unordered_map<" in spelling or "unordered_set<" in spelling

    def type_is_status(t):
        s = t.get_canonical().spelling
        return (s.endswith("::Status") or s == "Status"
                or "::StatusOr<" in s or s.startswith("StatusOr<"))

    for src in sources:
        tu = index.parse(src.abspath, args=args)
        severe = [d for d in tu.diagnostics if d.severity >= 4]
        if severe:
            raise RuntimeError(
                f"{src.rel}: libclang parse failed: {severe[0].spelling}")

        def walk(cursor, parent_kind):
            for child in cursor.get_children():
                if (child.location.file is None
                        or child.location.file.name != src.abspath):
                    walk(child, child.kind)
                    continue
                line = child.location.line
                if ("D1" in enabled and src.in_result_affecting()
                        and child.kind == K.CXX_FOR_RANGE_STMT):
                    kids = list(child.get_children())
                    if kids and type_is_unordered(kids[-2].type
                                                  if len(kids) >= 2
                                                  else kids[0].type):
                        suppressed = None
                        if src.waived(line, CHECKS["D1"][0]):
                            suppressed = "waiver"
                        elif has_sort_after(src, line):
                            suppressed = "sorted-drain"
                        findings.append(Finding(
                            src.rel, line, "D1",
                            "range-for over an unordered container (AST); "
                            "hash order can leak into results",
                            suppressed))
                if ("S1" in enabled and child.kind == K.CALL_EXPR
                        and parent_kind == K.COMPOUND_STMT
                        and type_is_status(child.type)):
                    suppressed = ("waiver"
                                  if src.waived(line, CHECKS["S1"][0])
                                  else None)
                    findings.append(Finding(
                        src.rel, line, "S1",
                        f"result of Status-returning "
                        f"`{child.spelling}(...)` is discarded (AST)",
                        suppressed))
                if ("T1" in enabled and src.in_result_affecting()
                        and src.rel.endswith(".cc")
                        and child.kind == K.VAR_DECL):
                    storage = child.storage_class
                    is_static = storage == cindex.StorageClass.STATIC
                    at_file_scope = parent_kind in (
                        K.TRANSLATION_UNIT, K.NAMESPACE)
                    if ((is_static or at_file_scope)
                            and not child.type.is_const_qualified()):
                        suppressed = ("waiver"
                                      if src.waived(line, CHECKS["T1"][0])
                                      else None)
                        findings.append(Finding(
                            src.rel, line, "T1",
                            "mutable static/file-scope state in a solver "
                            "translation unit (AST)",
                            suppressed))
                walk(child, child.kind)

        walk(tu.cursor, K.TRANSLATION_UNIT)

    if "D2" in enabled:
        for src in sources:
            if not src.is_rng_exempt():
                check_d2(src, findings)
    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def gather_sources(root, paths):
    rels = []
    for p in paths:
        absolute = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(absolute):
            rels.append(os.path.relpath(absolute, root))
            continue
        for dirpath, _, filenames in os.walk(absolute):
            for f in sorted(filenames):
                if f.endswith((".cc", ".h", ".cpp", ".hpp")):
                    rels.append(
                        os.path.relpath(os.path.join(dirpath, f), root))
    return [SourceFile(root, rel) for rel in sorted(set(rels))]


def main():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", default=[],
                        help="files or directories relative to --root "
                             "(default: src)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels up from this "
                             "script)")
    parser.add_argument("--engine", choices=["auto", "clang", "token"],
                        default="auto")
    parser.add_argument("--checks", default="D1,D2,S1,T1",
                        help="comma-separated subset of checks to run")
    parser.add_argument("--verbose", action="store_true",
                        help="also print suppressed findings (waivers and "
                             "sorted drains)")
    parser.add_argument("--list-checks", action="store_true")
    args = parser.parse_args()

    if args.list_checks:
        for check, (slug, desc) in CHECKS.items():
            print(f"{check}  {slug:<22} {desc}")
        return 0

    enabled = {c.strip().upper() for c in args.checks.split(",") if c.strip()}
    unknown = enabled - set(CHECKS)
    if unknown:
        print(f"error: unknown checks: {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    paths = args.paths or ["src"]
    sources = gather_sources(root, paths)
    if not sources:
        print(f"error: nothing to lint under {root} ({', '.join(paths)})",
              file=sys.stderr)
        return 2

    engine = args.engine
    cindex = index = None
    if engine in ("auto", "clang"):
        cindex, index = load_libclang()
        if cindex is None:
            if engine == "clang":
                print("error: --engine clang requested but the clang python "
                      "bindings / libclang are unavailable", file=sys.stderr)
                return 2
            engine = "token"
        else:
            engine = "clang"

    if engine == "clang":
        try:
            findings = run_clang_engine(cindex, index, sources, enabled,
                                        os.path.join(root, "src"))
        except Exception as e:
            print(f"warning: clang engine failed ({e}); falling back to the "
                  f"token engine", file=sys.stderr)
            engine = "token"
    if engine == "token":
        findings = run_token_engine(sources, enabled)

    findings.sort(key=lambda f: (f.path, f.line, f.check))
    live = [f for f in findings if f.suppressed is None]
    for f in live:
        print(f)
    if args.verbose:
        for f in findings:
            if f.suppressed is not None:
                print(f"{f.path}:{f.line}: suppressed [{f.check}] "
                      f"({f.suppressed})")
    n_waived = sum(1 for f in findings if f.suppressed is not None)
    print(f"cextend-lint ({engine} engine): {len(sources)} files, "
          f"{len(live)} finding(s), {n_waived} suppressed", file=sys.stderr)
    return 1 if live else 0


if __name__ == "__main__":
    sys.exit(main())
