// Must-not-fire fixture for S1: every Status-returning call is consumed —
// assigned, returned, branched on, or explicitly voided with a reason.
namespace cextend_fixture {

class Status {
 public:
  bool ok() const { return true; }
};

Status Persist(int value);

bool TryPersist() {
  Status s = Persist(1);
  return s.ok();
}

Status PropagatePersist() { return Persist(2); }

void BranchOnPersist() {
  if (!Persist(3).ok()) {
    return;
  }
}

void BestEffortPersist() {
  (void)Persist(4);  // best-effort cache warm; failure is benign
}

}  // namespace cextend_fixture
