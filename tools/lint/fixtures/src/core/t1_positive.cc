// Must-fire fixture for T1 (static-state): mutable statics in a solver
// translation unit survive across solves, making results history-dependent.
#include <cstdint>
#include <vector>

namespace cextend_fixture {

static int64_t g_solve_counter = 0;

thread_local std::vector<int64_t> t_scratch;

int64_t BumpCounter() { return ++g_solve_counter; }

}  // namespace cextend_fixture
