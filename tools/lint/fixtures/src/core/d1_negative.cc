// Must-not-fire fixture for D1: ordered containers are fine, and draining
// an unordered container into a vector that is sorted before use (the
// sorted-drain idiom) is the blessed way to iterate one.
#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_set>
#include <vector>

namespace cextend_fixture {

int64_t RangeForOverOrderedMap(const std::map<int64_t, int64_t>& m) {
  int64_t sum = 0;
  for (const auto& kv : m) sum = sum * 31 + kv.second;
  return sum;
}

std::vector<int64_t> SortedDrain(const std::unordered_set<int64_t>& s) {
  std::vector<int64_t> out(s.begin(), s.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace cextend_fixture
