// Must-fire fixture for S1 (status-ignored): the expression statements in
// DropEverything() discard Status/StatusOr returns.
namespace cextend_fixture {

class Status {
 public:
  bool ok() const { return true; }
};

template <typename T>
class StatusOr {
 public:
  bool ok() const { return true; }
};

Status Persist(int value);
StatusOr<int> Load();

struct Store {
  Status Flush();
};

void DropEverything(Store& store) {
  Persist(7);     // discarded Status
  Load();         // discarded StatusOr
  store.Flush();  // discarded Status through a member call
}

}  // namespace cextend_fixture
