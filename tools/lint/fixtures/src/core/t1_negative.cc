// Must-not-fire fixture for T1: immutable statics, static functions, and a
// waived thread_local scratch are all fine.
#include <cstdint>

namespace cextend_fixture {

static constexpr int64_t kBudget = 1 << 20;

static const char* const kStageName = "phase2";

static int64_t Twice(int64_t x) { return 2 * x; }

int64_t UseAll() {
  // cextend-lint: static-state-ok(per-thread scratch; reset before each use,
  // never observable in results)
  thread_local int64_t scratch = 0;
  scratch = Twice(kBudget);
  return scratch + (kStageName[0] == 'p' ? 1 : 0);
}

}  // namespace cextend_fixture
