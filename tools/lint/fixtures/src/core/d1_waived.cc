// Waiver fixture for D1: the loop below iterates an unordered container,
// but the waiver comment (with a mandatory reason) suppresses the finding.
#include <cstdint>
#include <unordered_map>

namespace cextend_fixture {

int64_t WaivedAccumulation(const std::unordered_map<int64_t, int64_t>& m) {
  int64_t sum = 0;
  // cextend-lint: unordered-iteration-ok(commutative sum; order-independent)
  for (const auto& kv : m) sum += kv.second;
  return sum;
}

}  // namespace cextend_fixture
