// Must-fire fixture for D2 (banned-primitive): every declaration below is a
// nondeterminism source that must live behind util/rng.{h,cc} or not exist.
#include <cstdlib>
#include <ctime>
#include <functional>
#include <map>
#include <random>

namespace cextend_fixture {

unsigned SeedFromEntropy() {
  std::random_device rd;  // nondeterministic entropy source
  return rd();
}

int LegacyRand() { return rand(); }

long WallClockSeed() { return time(nullptr); }

using PointerHash = std::hash<int*>;  // address-dependent hash

std::map<int*, int> g_by_address;  // iteration order follows addresses

}  // namespace cextend_fixture
