// Must-not-fire fixture for D2: value-keyed containers, value hashes, and
// identifiers that merely contain banned substrings ("runtime", "operand").
#include <cstdint>
#include <functional>
#include <map>

namespace cextend_fixture {

std::map<int64_t, int> g_by_value;

using ValueHash = std::hash<int64_t>;

double runtime(double operand) { return operand * 2.0; }

double CallRuntime() { return runtime(1.0); }

}  // namespace cextend_fixture
