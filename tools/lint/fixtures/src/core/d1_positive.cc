// Must-fire fixture for D1 (unordered-iteration): both loop forms iterate a
// hash container in result-affecting code with no waiver and no sorted
// drain, so iteration order leaks into `sum`'s accumulation sequence.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace cextend_fixture {

int64_t RangeForOverUnordered(const std::unordered_map<int64_t, int64_t>& m) {
  int64_t sum = 0;
  for (const auto& kv : m) {
    sum = sum * 31 + kv.second;  // order-dependent fold
  }
  return sum;
}

int64_t IteratorLoopOverUnordered(const std::unordered_set<int64_t>& s) {
  int64_t first = 0;
  for (auto it = s.begin(); it != s.end(); ++it) {
    first = *it;  // "first" element is hash-order-dependent
    break;
  }
  return first;
}

}  // namespace cextend_fixture
