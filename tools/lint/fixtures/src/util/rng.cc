// D2 exemption fixture: util/rng.cc is the one blessed home for randomness
// primitives, so the std::random_device below must NOT fire.
#include <random>

namespace cextend_fixture {

unsigned HardwareEntropy() {
  std::random_device rd;
  return rd();
}

}  // namespace cextend_fixture
