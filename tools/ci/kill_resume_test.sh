#!/usr/bin/env bash
# Kill/resume leg of the chaos CI job: interrupt a durable streaming CLI run
# -- with injected sink faults and with a real SIGKILL -- then resume with
# --resume and require the final stream and output CSVs to be byte-identical
# to an uninterrupted reference run.
#
# Usage: kill_resume_test.sh <path-to-cextend_cli> [workdir]
set -euo pipefail

CLI=$(readlink -f "$1")
WORK=${2:-$(mktemp -d)}
mkdir -p "$WORK"
cd "$WORK"

echo "== kill/resume test in $WORK =="

python3 - <<'EOF'
import random
random.seed(20210614)
areas = [f"A{i}" for i in range(12)]
hid = 0
with open("housing.csv", "w") as f:
    f.write("hid,Area\n")
    for a in areas:
        for _ in range(3):
            f.write(f"{hid},{a}\n")
            hid += 1
with open("persons.csv", "w") as f:
    f.write("pid,Age,Rel,hid\n")
    for p in range(3000):
        age = random.randint(1, 90)
        rel = random.choice(["Owner", "Renter", "Child"])
        f.write(f"{p},{age},{rel},0\n")
with open("spec.txt", "w") as f:
    for i, a in enumerate(areas):
        f.write(f'cc c{i}: COUNT(Area = "{a}") = {random.randint(150, 350)}\n')
    f.write('dc owners: !(t0.Rel = "Owner" & t1.Rel = "Owner" & t0.Age < t1.Age - 40)\n')
print("dataset: 3000 persons, 36 houses, 12 areas")
EOF

run() {
  "$CLI" --r1=persons.csv --r1-schema="pid:int,Age:int,Rel:str,hid:int" \
         --r2=housing.csv --r2-schema="hid:int,Area:str" \
         --key1=pid --fk=hid --key2=hid --constraints=spec.txt \
         --seed=21 --threads=2 "$@"
}

echo "== reference run =="
run --stream-out=ref.stream --manifest=ref.manifest --shards=64 \
    --out-r1=ref_r1.csv --out-r2=ref_r2.csv > /dev/null

compare() {
  cmp ref.stream cur.stream
  cmp ref_r1.csv cur_r1.csv
  cmp ref_r2.csv cur_r2.csv
  echo "== $1: stream + CSVs byte-identical =="
}

# ---- Leg 1: injected fault interruptions (clean process exit mid-stream,
# torn mid-record write included), then a single --resume run. ----
for fault in "manifest.commit=0.5" "sink.torn_write=0.5"; do
  rm -f cur.stream cur.manifest cur_r1.csv cur_r2.csv
  interrupted=0
  for seed in 1 2 3 4 5 6 7 8; do
    rm -f cur.stream cur.manifest
    if ! CEXTEND_FAULTS="$fault" CEXTEND_FAULTS_SEED=$seed \
         run --stream-out=cur.stream --manifest=cur.manifest --shards=64 \
             --max-attempts=1 > /dev/null 2>&1; then
      interrupted=1
      break
    fi
  done
  if [ "$interrupted" -ne 1 ]; then
    echo "ERROR: $fault never interrupted the run" >&2
    exit 1
  fi
  echo "== interrupted by $fault (fault seed $seed); resuming =="
  run --stream-out=cur.stream --manifest=cur.manifest --resume --shards=64 \
      --out-r1=cur_r1.csv --out-r2=cur_r2.csv > /dev/null
  compare "$fault"
done

# ---- Leg 2: a real SIGKILL mid-stream. Tight admission (one resident shard,
# many shards) slows retirement enough to kill the process while the manifest
# is growing; resume must still converge to the reference bytes. Killing
# leaves whatever the kernel got -- possibly a torn tail -- which is exactly
# the crash window the manifest protocol covers.
killed=0
for attempt in 1 2 3 4 5 6 7 8 9 10; do
  rm -f cur.stream cur.manifest cur_r1.csv cur_r2.csv
  run --stream-out=cur.stream --manifest=cur.manifest --shards=256 \
      --max-resident-shards=1 --threads=1 \
      --out-r1=cur_r1.csv --out-r2=cur_r2.csv > /dev/null 2>&1 &
  pid=$!
  # Kill as soon as the manifest shows committed shard records (file header
  # is 24 bytes; any growth past ~100 bytes means shards are retiring).
  for i in $(seq 1 400); do
    size=$(stat -c%s cur.manifest 2>/dev/null || echo 0)
    if [ "$size" -gt 100 ]; then break; fi
    if ! kill -0 "$pid" 2>/dev/null; then break; fi
    sleep 0.005
  done
  if kill -KILL "$pid" 2>/dev/null; then
    wait "$pid" 2>/dev/null || true
    size=$(stat -c%s cur.manifest 2>/dev/null || echo 0)
    if [ "$size" -gt 100 ]; then
      killed=1
      echo "== SIGKILL delivered mid-stream (manifest ${size}B, attempt $attempt) =="
      break
    fi
    # Killed too early to commit anything interesting; try again.
  else
    wait "$pid" 2>/dev/null || true
    # Finished before we could kill it; shrink the window and retry.
  fi
done
if [ "$killed" -ne 1 ]; then
  echo "ERROR: never caught the run mid-stream with SIGKILL" >&2
  exit 1
fi
rm -f cur_r1.csv cur_r2.csv
run --stream-out=cur.stream --manifest=cur.manifest --resume --shards=256 \
    --max-resident-shards=1 --threads=1 \
    --out-r1=cur_r1.csv --out-r2=cur_r2.csv > /dev/null
compare "SIGKILL"

# ---- Leg 3: resuming a finished run is a no-op that still rebuilds CSVs. ----
rm -f cur_r1.csv cur_r2.csv
run --stream-out=cur.stream --manifest=cur.manifest --resume --shards=256 \
    --max-resident-shards=1 \
    --out-r1=cur_r1.csv --out-r2=cur_r2.csv > /dev/null
compare "finished-run resume"

echo "== kill/resume test PASSED =="
