#!/usr/bin/env python3
"""Machine-checked perf regression gate for the bench trajectories.

Diffs a *fresh* bench run against a *committed baseline* and fails (exit 1)
when any kernel regressed beyond a threshold, so every PR's perf claim is
load-bearing instead of prose. Three JSON-lines record kinds are understood,
matching what the bench binaries append:

  * micro-kernel records (bench_micro_kernels):
      {"kernel": "PartitionColoring", "n": 4096, "seconds": 0.0123}
    keyed by (kernel, n), compared on ``seconds``;
  * phase-1 ILP records (bench_ilp_kernels):
      {"kernel": "ilp_solve", "bins": ..., "combos": ..., "ccs": ...,
       "threads": ..., "sparse_seconds": ...}
    keyed by (kernel, bins, combos, ccs, threads), compared on
    ``sparse_seconds`` (the optimized path — the dense reference column is
    informational);
  * phase-2 harness records (bench/harness.cc):
      {"method": "hybrid", "scale": 1.0, "phase2_seconds": ...}
    keyed by (method, scale), compared on ``phase2_seconds``.

Trajectory files are append-only, so the *latest* record per key wins on
both sides. Keys present on only one side are reported but never fail the
gate (new benchmarks are allowed to appear; retired ones to disappear).
Entries faster than --min-seconds on both sides are skipped — sub-millisecond
timings are noise-dominated and would make the gate flaky.

Usage:
  tools/bench_diff.py --baseline BENCH_phase2.json --fresh fresh_phase2.json \
                      [--baseline BENCH_phase1.json --fresh fresh_phase1.json]
                      [--threshold 1.25] [--min-seconds 0.001] [--skip-missing]
  tools/bench_diff.py --self-test

--skip-missing turns a missing baseline or fresh file into a warned-and-
skipped pair instead of a hard error, so partial CI legs (e.g. a job that
only produced the phase-2 trajectory) can reuse one gate invocation.

--baseline/--fresh are paired positionally (first baseline diffs against
first fresh, and so on). --self-test exercises the gate on synthetic
baseline/regressed/improved trajectories and exits nonzero if the gate logic
itself is broken; it is wired into ctest as ``bench_diff_selftest``.

Regenerating baselines (Release build, quiet machine):
  see bench/README.md — the committed BENCH_phase1.json / BENCH_phase2.json
  must come from the same machine class you intend to gate on, and CI passes
  an explicit wider --threshold to absorb runner variance.
"""

import argparse
import json
import os
import sys
import tempfile


def classify(record):
    """Returns (key, seconds) for a record, or None if unrecognized."""
    if "method" in record:
        return (("phase2", record.get("method"), record.get("scale")),
                record.get("phase2_seconds"))
    if "kernel" in record and "sparse_seconds" in record:
        return (("phase1", record.get("kernel"), record.get("bins"),
                 record.get("combos"), record.get("ccs"),
                 record.get("threads")),
                record.get("sparse_seconds"))
    if "kernel" in record and "seconds" in record:
        return (("micro", record.get("kernel"), record.get("n")),
                record.get("seconds"))
    return None


def fatal(message):
    """Input/infrastructure error: distinct from exit 1 (= perf regression)."""
    print(f"error: {message}", file=sys.stderr)
    sys.exit(2)


def load_latest(path):
    """Latest (key -> seconds) per record key in a JSON-lines trajectory.

    Malformed lines and record-free files are fatal: a truncated or empty
    baseline would otherwise shrink the shared-key set and let the gate pass
    vacuously, which is exactly the silent failure a perf gate must not have.
    """
    latest = {}
    try:
        with open(path, "r", encoding="utf-8") as f:
            for line_no, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as e:
                    fatal(f"{path}:{line_no}: malformed JSON record ({e}); "
                          f"the trajectory is corrupt or was truncated "
                          f"mid-append — regenerate it (see bench/README.md)")
                kv = classify(record)
                if kv is None or kv[1] is None:
                    continue
                latest[kv[0]] = float(kv[1])
    except OSError as e:
        fatal(f"cannot read {path}: {e}")
    if not latest:
        fatal(f"{path}: no usable bench records; an empty baseline would "
              f"make the gate pass vacuously — regenerate it "
              f"(see bench/README.md)")
    return latest


def key_str(key):
    kind = key[0]
    if kind == "micro":
        return f"{key[1]}/{key[2]}"
    if kind == "phase1":
        return f"{key[1]}@{key[2]}bins/t{key[5]}"
    return f"{key[1]}@{key[2]}x"


def diff(baseline, fresh, threshold, min_seconds):
    """Compares two (key -> seconds) maps. Returns the list of regressions."""
    regressions = []
    shared = sorted(set(baseline) & set(fresh))
    if not shared:
        print("warning: no shared keys between baseline and fresh run",
              file=sys.stderr)
    header = f"{'kernel':<40} {'baseline':>12} {'fresh':>12} {'ratio':>8}"
    print(header)
    print("-" * len(header))
    for key in shared:
        base_s, fresh_s = baseline[key], fresh[key]
        if base_s < min_seconds and fresh_s < min_seconds:
            print(f"{key_str(key):<40} {base_s:>12.6f} {fresh_s:>12.6f} "
                  f"{'skip':>8}")
            continue
        ratio = fresh_s / base_s if base_s > 0 else float("inf")
        flag = "  REGRESSED" if ratio > threshold else ""
        print(f"{key_str(key):<40} {base_s:>12.6f} {fresh_s:>12.6f} "
              f"{ratio:>7.2f}x{flag}")
        if ratio > threshold:
            regressions.append((key, base_s, fresh_s, ratio))
    for key in sorted(set(baseline) - set(fresh)):
        print(f"{key_str(key):<40} {baseline[key]:>12.6f} {'absent':>12} "
              f"{'-':>8}")
    for key in sorted(set(fresh) - set(baseline)):
        print(f"{key_str(key):<40} {'absent':>12} {fresh[key]:>12.6f} "
              f"{'-':>8}  (new)")
    return regressions


def run_gate(pairs, threshold, min_seconds, skip_missing=False):
    all_regressions = []
    for baseline_path, fresh_path in pairs:
        if skip_missing:
            missing = [p for p in (baseline_path, fresh_path)
                       if not os.path.exists(p)]
            if missing:
                print(f"warning: skipping {baseline_path} vs {fresh_path} "
                      f"(missing: {', '.join(missing)})", file=sys.stderr)
                continue
        print(f"== {baseline_path} vs {fresh_path} "
              f"(threshold {threshold:.2f}x) ==")
        regressions = diff(load_latest(baseline_path),
                           load_latest(fresh_path), threshold, min_seconds)
        all_regressions.extend(regressions)
        print()
    if all_regressions:
        print(f"FAIL: {len(all_regressions)} kernel(s) regressed beyond "
              f"{threshold:.2f}x:")
        for key, base_s, fresh_s, ratio in all_regressions:
            print(f"  {key_str(key)}: {base_s:.6f}s -> {fresh_s:.6f}s "
                  f"({ratio:.2f}x)")
        return 1
    print("OK: no kernel regressed beyond the threshold")
    return 0


def self_test():
    """Gate logic check on synthetic trajectories; exit 0 iff correct."""
    baseline_records = [
        {"kernel": "ConflictBuildImplicitClique", "n": 65536,
         "seconds": 0.100},
        {"kernel": "PartitionColoring", "n": 4096, "seconds": 0.050},
        # Stale earlier record: the later one must win.
        {"kernel": "InvalidRepairOracleProbe", "n": 4096, "seconds": 9.0},
        {"kernel": "InvalidRepairOracleProbe", "n": 4096, "seconds": 0.010},
        {"kernel": "ilp_solve", "bins": 200, "combos": 16, "ccs": 50,
         "threads": 1, "dense_seconds": 1.0, "sparse_seconds": 0.200},
        {"method": "hybrid", "scale": 1.0, "phase2_seconds": 0.300},
        # Noise-floor entry: must be skipped, not gated.
        {"kernel": "TinyKernel", "n": 8, "seconds": 0.0000004},
    ]
    regressed_records = [
        {"kernel": "ConflictBuildImplicitClique", "n": 65536,
         "seconds": 0.098},  # fine
        {"kernel": "PartitionColoring", "n": 4096, "seconds": 0.090},  # 1.8x
        {"kernel": "InvalidRepairOracleProbe", "n": 4096, "seconds": 0.011},
        {"kernel": "ilp_solve", "bins": 200, "combos": 16, "ccs": 50,
         "threads": 1, "dense_seconds": 1.0, "sparse_seconds": 0.210},
        {"method": "hybrid", "scale": 1.0, "phase2_seconds": 0.310},
        {"kernel": "TinyKernel", "n": 8, "seconds": 0.0000009},  # noise, 2.2x
    ]
    improved_records = [
        {"kernel": "ConflictBuildImplicitClique", "n": 65536,
         "seconds": 0.040},
        {"kernel": "PartitionColoring", "n": 4096, "seconds": 0.020},
        {"kernel": "InvalidRepairOracleProbe", "n": 4096, "seconds": 0.002},
        {"kernel": "ilp_solve", "bins": 200, "combos": 16, "ccs": 50,
         "threads": 1, "dense_seconds": 1.0, "sparse_seconds": 0.190},
        {"method": "hybrid", "scale": 1.0, "phase2_seconds": 0.250},
        {"kernel": "BrandNewKernel", "n": 128, "seconds": 0.5},  # new: ok
    ]

    def write(records):
        f = tempfile.NamedTemporaryFile("w", suffix=".json", delete=False)
        for r in records:
            f.write(json.dumps(r) + "\n")
        f.close()
        return f.name

    base = write(baseline_records)
    bad = write(regressed_records)
    good = write(improved_records)
    try:
        print("--- self-test: regressed run must FAIL the gate ---")
        if run_gate([(base, bad)], threshold=1.25, min_seconds=0.001) != 1:
            print("self-test FAILED: synthetic regression passed the gate")
            return 1
        print("\n--- self-test: improved run must PASS the gate ---")
        if run_gate([(base, good)], threshold=1.25, min_seconds=0.001) != 0:
            print("self-test FAILED: improved run tripped the gate")
            return 1
        print("\n--- self-test: identical run must PASS the gate ---")
        if run_gate([(base, base)], threshold=1.25, min_seconds=0.001) != 0:
            print("self-test FAILED: identical trajectories tripped the gate")
            return 1
        print("\n--- self-test: --skip-missing must skip absent pairs ---")
        gone = os.path.join(tempfile.gettempdir(), "bench_diff_no_such.json")
        if run_gate([(base, gone), (base, bad)], threshold=1.25,
                    min_seconds=0.001, skip_missing=True) != 1:
            print("self-test FAILED: --skip-missing swallowed a real "
                  "regression in the remaining pair")
            return 1
        if run_gate([(gone, gone)], threshold=1.25, min_seconds=0.001,
                    skip_missing=True) != 0:
            print("self-test FAILED: all-pairs-missing should pass "
                  "under --skip-missing")
            return 1

        def gate_exit(pairs):
            """Exit code of run_gate including fatal() SystemExits."""
            try:
                return run_gate(pairs, threshold=1.25, min_seconds=0.001)
            except SystemExit as e:
                return e.code

        print("\n--- self-test: truncated baseline JSON must be fatal ---")
        truncated = write(baseline_records)
        with open(truncated, "a", encoding="utf-8") as f:
            f.write('{"kernel": "PartitionColoring", "n": 4096, "seco\n')
        if gate_exit([(truncated, good)]) != 2:
            print("self-test FAILED: truncated baseline did not exit 2")
            return 1
        os.unlink(truncated)

        print("\n--- self-test: record-free baseline must be fatal ---")
        empty = write([{"unrelated": True}])
        if gate_exit([(empty, good)]) != 2:
            print("self-test FAILED: record-free baseline did not exit 2")
            return 1
        os.unlink(empty)
    finally:
        for path in (base, bad, good):
            os.unlink(path)
    print("\nself-test OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", action="append", default=[],
                        help="committed baseline trajectory (repeatable)")
    parser.add_argument("--fresh", action="append", default=[],
                        help="fresh run trajectory, paired with --baseline "
                             "by position (repeatable)")
    parser.add_argument("--threshold", type=float, default=1.25,
                        help="fail when fresh/baseline exceeds this "
                             "(default 1.25)")
    parser.add_argument("--min-seconds", type=float, default=0.001,
                        help="skip entries below this on both sides "
                             "(noise floor, default 1ms)")
    parser.add_argument("--skip-missing", action="store_true",
                        help="warn and skip pairs whose baseline or fresh "
                             "file does not exist instead of failing")
    parser.add_argument("--self-test", action="store_true",
                        help="run the synthetic gate self-check and exit")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())
    if not args.baseline or len(args.baseline) != len(args.fresh):
        parser.error("--baseline and --fresh must be given in equal numbers")
    sys.exit(run_gate(list(zip(args.baseline, args.fresh)),
                      args.threshold, args.min_seconds, args.skip_missing))


if __name__ == "__main__":
    main()
