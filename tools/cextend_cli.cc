// cextend_cli — solve a C-Extension instance from CSV files and a
// constraint spec, no C++ required.
//
//   cextend_cli --r1=persons.csv --r1-schema="pid:int,Age:int,Rel:str,hid:int"
//               --r2=housing.csv --r2-schema="hid:int,Area:str"
//               --key1=pid --fk=hid --key2=hid
//               --constraints=spec.txt
//               [--out-r1=r1_hat.csv] [--out-r2=r2_hat.csv]
//               [--out-join=v_join.csv] [--seed=N] [--threads=N]
//               [--timeout-ms=N] [--max-attempts=N]
//               [--stream-out=PATH] [--manifest=PATH] [--resume]
//               [--shards=N] [--max-resident-shards=K]
//               [--method=hybrid|baseline|baseline-marginals]
//
// --timeout-ms bounds each solve attempt with a monotonic deadline (expiry
// returns DEADLINE_EXCEEDED). On resource-style failures the CLI retries
// down a degradation ladder (naive oracle, cold solves, dense tableau,
// monolithic ILP — cumulative), up to --max-attempts attempts; every rung
// yields the same database for a fixed seed. The plan is built once and
// cached in serialized form, so retries only re-execute shards, never
// phase 1 or planning (unless planning itself failed).
//
// --stream-out streams phase 2 to PATH as shards retire from the
// bounded-memory executor (format: src/core/shard_executor.h), instead of
// only materializing tables at the end; --shards / --max-resident-shards
// pick the shard count and admission window (0 = auto / unbounded). The
// stream bytes are identical for any shard geometry and thread count.
//
// Streaming is durable (src/core/stream_checkpoint.h): a sidecar CXMF
// manifest (--manifest, default <stream-out>.manifest) is fsync'd at every
// shard retirement. --resume restarts an interrupted run from the last
// committed shard boundary instead of from scratch, and a retried attempt
// likewise resumes from the durable prefix — degradation rungs only apply
// to shards that have not retired yet. The resumed stream is byte-identical
// to an uninterrupted run.
//
// The spec file holds one constraint per line (see constraints/parser.h):
//     cc chicago_owners: COUNT(Rel = "Owner" & Area = "Chicago") = 4
//     dc one_owner:      !(t0.Rel = "Owner" & t1.Rel = "Owner")

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

#include "constraints/metrics.h"
#include "constraints/parser.h"
#include "core/baseline.h"
#include "core/shard_executor.h"
#include "core/solver.h"
#include "core/stream_checkpoint.h"
#include "relational/csv.h"
#include "util/string_util.h"

namespace cextend {
namespace {

struct CliArgs {
  std::string r1_path, r1_schema;
  std::string r2_path, r2_schema;
  std::string key1, fk, key2;
  std::string constraints_path;
  std::string out_r1 = "r1_hat.csv";
  std::string out_r2 = "r2_hat.csv";
  std::string out_join;
  std::string method = "hybrid";
  std::string stream_out;        // empty = no streaming sink
  std::string manifest;          // empty = <stream_out>.manifest
  bool resume = false;           // continue from the durable prefix
  uint64_t seed = 1;
  size_t threads = 1;
  size_t shards = 0;             // 0 = auto
  size_t max_resident_shards = 0;  // 0 = unbounded
  int64_t timeout_ms = 0;  // 0 = no deadline
  size_t max_attempts = 5; // 1 = no degradation retries
};

// Retry ladder: attempt k forces rungs 1..k cumulatively. Every rung is a
// slower-but-equivalent path (bit-identical output for a fixed seed), so a
// retry changes resource behaviour, never the synthesized database.
constexpr const char* kRungLabels[] = {
    "default configuration",
    "naive conflict oracle",
    "cold LP solves (no warm start)",
    "dense simplex tableau",
    "monolithic phase-1 ILP",
};
constexpr size_t kNumRungs = sizeof(kRungLabels) / sizeof(kRungLabels[0]);

SolverOptions OptionsForAttempt(const CliArgs& args, size_t rung) {
  SolverOptions options;
  options.seed = args.seed;
  options.phase2.num_threads = args.threads;
  options.phase2.num_shards = args.shards;
  options.phase2.max_resident_shards = args.max_resident_shards;
  if (rung >= 1) options.phase2.use_naive_oracle = true;
  if (rung >= 2) options.phase1.ilp.ilp.warm_start = false;
  if (rung >= 3) options.phase1.ilp.ilp.simplex.use_dense_tableau = true;
  if (rung >= 4) options.phase1.ilp.decompose = false;
  if (args.timeout_ms > 0) {
    // Fresh per-attempt deadline: a degraded retry gets the full budget.
    options.run_control.deadline = Deadline::AfterMillis(args.timeout_ms);
  }
  return options;
}

// A retry down the ladder only helps with resource-style failures. Bad
// input (kInvalidArgument, kNotFound) and an expired deadline (degraded
// rungs are slower, not faster) fail the run immediately.
bool IsRetryable(StatusCode code) {
  return code == StatusCode::kResourceExhausted ||
         code == StatusCode::kInternal;
}

StatusOr<Schema> ParseSchemaSpec(const std::string& spec) {
  std::vector<ColumnSpec> columns;
  for (const std::string& field : StrSplit(spec, ',')) {
    std::vector<std::string> parts = StrSplit(field, ':');
    if (parts.size() != 2) {
      return Status::InvalidArgument("bad schema field '" + field +
                                     "'; expected name:int or name:str");
    }
    std::string name(StrTrim(parts[0]));
    std::string type(StrTrim(parts[1]));
    if (type == "int" || type == "i64" || type == "int64") {
      columns.push_back({name, DataType::kInt64});
    } else if (type == "str" || type == "string") {
      columns.push_back({name, DataType::kString});
    } else {
      return Status::InvalidArgument("unknown column type: " + type);
    }
  }
  if (columns.empty()) return Status::InvalidArgument("empty schema spec");
  return Schema::Create(std::move(columns));
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --r1=CSV --r1-schema=SPEC --r2=CSV --r2-schema=SPEC \\\n"
      "          --key1=COL --fk=COL --key2=COL --constraints=FILE \\\n"
      "          [--out-r1=CSV] [--out-r2=CSV] [--out-join=CSV] \\\n"
      "          [--seed=N] [--threads=N] [--timeout-ms=N] "
      "[--max-attempts=N] \\\n"
      "          [--stream-out=PATH] [--manifest=PATH] [--resume] "
      "[--shards=N] [--max-resident-shards=K] \\\n"
      "          [--method=hybrid|baseline|baseline-marginals]\n",
      argv0);
  return 2;
}

Status Run(const CliArgs& args) {
  CEXTEND_ASSIGN_OR_RETURN(Schema r1_schema, ParseSchemaSpec(args.r1_schema));
  CEXTEND_ASSIGN_OR_RETURN(Schema r2_schema, ParseSchemaSpec(args.r2_schema));
  CEXTEND_ASSIGN_OR_RETURN(Table r1, ReadCsv(args.r1_path, r1_schema));
  CEXTEND_ASSIGN_OR_RETURN(Table r2, ReadCsv(args.r2_path, r2_schema));
  CEXTEND_ASSIGN_OR_RETURN(
      PairSchema names,
      PairSchema::Infer(r1, r2, args.key1, args.fk, args.key2));
  CEXTEND_ASSIGN_OR_RETURN(std::string spec_text,
                           ReadFile(args.constraints_path));
  // The spec's CC columns are resolved against the *attribute* schemas so
  // key/FK columns cannot be constrained by accident.
  std::vector<ColumnSpec> r1_attr_cols, r2_attr_cols;
  for (const std::string& a : names.r1_attrs)
    r1_attr_cols.push_back({a, r1_schema.column(r1_schema.IndexOrDie(a)).type});
  for (const std::string& b : names.r2_attrs)
    r2_attr_cols.push_back({b, r2_schema.column(r2_schema.IndexOrDie(b)).type});
  CEXTEND_ASSIGN_OR_RETURN(
      ConstraintSpec spec,
      ParseConstraintSpec(spec_text, Schema(r1_attr_cols),
                          Schema(r2_attr_cols)));
  std::printf("loaded R1=%zu rows, R2=%zu rows, %zu CCs, %zu DCs\n",
              r1.NumRows(), r2.NumRows(), spec.ccs.size(), spec.dcs.size());

  if (args.method != "hybrid" && args.method != "baseline" &&
      args.method != "baseline-marginals") {
    return Status::InvalidArgument("unknown method: " + args.method);
  }
  if (!args.stream_out.empty() && args.method != "hybrid") {
    return Status::InvalidArgument(
        "--stream-out requires --method=hybrid (baselines have no "
        "plan/execute split)");
  }
  if (args.resume && args.stream_out.empty()) {
    return Status::InvalidArgument(
        "--resume requires --stream-out (only streamed runs are durable)");
  }
  size_t max_attempts = std::min(std::max<size_t>(args.max_attempts, 1),
                                 kNumRungs);
  // The plan is identical on every rung (degraded paths are equivalence-
  // tested), so it is built once and cached in serialized form; retries
  // deserialize it and jump straight to shard execution.
  struct PlanCache {
    std::string plan_bytes;
    std::optional<Table> v_join;
    SolveStats stats;
    double plan_build_seconds = 0.0;
  };
  PlanCache cache;
  // Whether the next streaming attempt continues from the durable prefix:
  // --resume opts in up front, and any streaming attempt that got far enough
  // to commit manifest records makes the *retry* resume (degradation rungs
  // then only apply to shards that never retired).
  bool resume_stream = args.resume;
  auto attempt_hybrid = [&](const SolverOptions& options)
      -> StatusOr<Solution> {
    StatusOr<PlannedCExtension> planned = Status::Internal("unset");
    if (cache.v_join.has_value()) {
      CEXTEND_ASSIGN_OR_RETURN(SynthesisPlan plan,
                               SynthesisPlan::Deserialize(cache.plan_bytes));
      planned = PlannedCExtension{std::move(plan), cache.v_join->Clone(),
                                  cache.stats, cache.plan_build_seconds};
    } else {
      planned = PlanCExtension(r1, r2, names, spec.ccs, spec.dcs, options);
      if (planned.ok()) {
        cache.plan_bytes = planned->plan.Serialize();
        cache.v_join = planned->v_join.Clone();
        cache.stats = planned->stats;
        cache.plan_build_seconds = planned->plan_build_seconds;
      }
    }
    CEXTEND_RETURN_IF_ERROR(planned.status());
    if (args.stream_out.empty()) {
      return ExecuteCExtensionPlan(std::move(planned).value(), r1, r2, names,
                                   spec.dcs, options);
    }
    DurableStreamSpec stream;
    stream.stream_path = args.stream_out;
    stream.manifest_path = args.manifest;
    stream.resume = resume_stream;
    resume_stream = true;  // whatever this attempt committed stays durable
    return ExecuteCExtensionPlanDurable(std::move(planned).value(), r1, r2,
                                        names, spec.dcs, stream, options);
  };
  StatusOr<Solution> solution = Status::Internal("unset");
  for (size_t rung = 0; rung < max_attempts; ++rung) {
    SolverOptions options = OptionsForAttempt(args, rung);
    if (rung > 0) {
      std::fprintf(stderr, "retrying with %s (attempt %zu/%zu)%s\n",
                   kRungLabels[rung], rung + 1, max_attempts,
                   cache.v_join.has_value() ? ", reusing cached plan" : "");
    }
    if (args.method == "hybrid") {
      solution = attempt_hybrid(options);
    } else if (args.method == "baseline") {
      solution = SolveBaseline(r1, r2, names, spec.ccs, spec.dcs,
                               BaselineKind::kPlain, options);
    } else {
      solution = SolveBaseline(r1, r2, names, spec.ccs, spec.dcs,
                               BaselineKind::kWithMarginals, options);
    }
    if (solution.ok()) break;
    if (!IsRetryable(solution.status().code()) || rung + 1 == max_attempts) {
      break;
    }
    std::fprintf(stderr, "solve failed: %s\n",
                 solution.status().ToString().c_str());
  }
  CEXTEND_RETURN_IF_ERROR(solution.status());
  if (solution->stats.ladder.AnyDegradation()) {
    std::fprintf(stderr, "note: degraded paths were used: %s\n",
                 solution->stats.Summary().c_str());
  }

  CEXTEND_ASSIGN_OR_RETURN(CcErrorReport cc_report,
                           EvaluateCcError(spec.ccs, solution->v_join));
  CEXTEND_ASSIGN_OR_RETURN(
      DcErrorReport dc_report,
      EvaluateDcError(spec.dcs, solution->r1_hat, names.fk));
  std::printf("%s\n%s\n", cc_report.Summary().c_str(),
              dc_report.Summary().c_str());
  std::printf("new R2 tuples: %zu\n",
              solution->stats.phase2.new_r2_tuples);
  std::printf("%s", solution->stats.BreakdownTable().c_str());
  if (!args.stream_out.empty()) {
    std::printf("streamed %zu shards to %s (%s)\n",
                solution->stats.phase2.shards_emitted,
                args.stream_out.c_str(),
                solution->stats.Summary().c_str());
  }

  CEXTEND_RETURN_IF_ERROR(WriteCsv(solution->r1_hat, args.out_r1));
  CEXTEND_RETURN_IF_ERROR(WriteCsv(solution->r2_hat, args.out_r2));
  std::printf("wrote %s and %s\n", args.out_r1.c_str(), args.out_r2.c_str());
  if (!args.out_join.empty()) {
    CEXTEND_RETURN_IF_ERROR(WriteCsv(solution->v_join, args.out_join));
    std::printf("wrote %s\n", args.out_join.c_str());
  }
  return Status::Ok();
}

}  // namespace
}  // namespace cextend

int main(int argc, char** argv) {
  cextend::CliArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      size_t len = strlen(prefix);
      return strncmp(arg, prefix, len) == 0 ? arg + len : nullptr;
    };
    if (const char* v = value("--r1=")) args.r1_path = v;
    else if (const char* v = value("--r1-schema=")) args.r1_schema = v;
    else if (const char* v = value("--r2=")) args.r2_path = v;
    else if (const char* v = value("--r2-schema=")) args.r2_schema = v;
    else if (const char* v = value("--key1=")) args.key1 = v;
    else if (const char* v = value("--fk=")) args.fk = v;
    else if (const char* v = value("--key2=")) args.key2 = v;
    else if (const char* v = value("--constraints=")) args.constraints_path = v;
    else if (const char* v = value("--out-r1=")) args.out_r1 = v;
    else if (const char* v = value("--out-r2=")) args.out_r2 = v;
    else if (const char* v = value("--out-join=")) args.out_join = v;
    else if (const char* v = value("--method=")) args.method = v;
    else if (const char* v = value("--stream-out=")) args.stream_out = v;
    else if (const char* v = value("--manifest=")) args.manifest = v;
    else if (strcmp(arg, "--resume") == 0) args.resume = true;
    else if (const char* v = value("--seed=")) args.seed = strtoull(v, nullptr, 10);
    else if (const char* v = value("--threads=")) args.threads = strtoull(v, nullptr, 10);
    else if (const char* v = value("--shards=")) args.shards = strtoull(v, nullptr, 10);
    else if (const char* v = value("--max-resident-shards=")) args.max_resident_shards = strtoull(v, nullptr, 10);
    else if (const char* v = value("--timeout-ms=")) args.timeout_ms = strtoll(v, nullptr, 10);
    else if (const char* v = value("--max-attempts=")) args.max_attempts = strtoull(v, nullptr, 10);
    else return cextend::Usage(argv[0]);
  }
  if (args.r1_path.empty() || args.r2_path.empty() ||
      args.r1_schema.empty() || args.r2_schema.empty() || args.key1.empty() ||
      args.fk.empty() || args.key2.empty() || args.constraints_path.empty()) {
    return cextend::Usage(argv[0]);
  }
  cextend::Status status = cextend::Run(args);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
