// Motivating use case from the paper's introduction: releasing synthetic
// linked data when only *noisy* (differentially private) counts of the real
// data are available. The curator publishes Laplace-noised CC targets; the
// solver synthesizes a database consistent with those answers *and* with the
// integrity constraints — giving analysts a DC-clean stand-in to develop
// against before being granted access to the real data.
//
//   $ ./examples/private_release [epsilon]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "constraints/metrics.h"
#include "core/solver.h"
#include "datagen/census.h"
#include "datagen/constraint_gen.h"
#include "util/rng.h"

using namespace cextend;
using namespace cextend::datagen;

namespace {

/// Laplace(0, scale) noise via inverse CDF.
double LaplaceNoise(Rng& rng, double scale) {
  double u = rng.UniformDouble() - 0.5;
  return -scale * (u < 0 ? -1.0 : 1.0) * std::log(1.0 - 2.0 * std::fabs(u));
}

}  // namespace

int main(int argc, char** argv) {
  double epsilon = argc > 1 ? atof(argv[1]) : 1.0;

  CensusOptions census;
  census.num_persons = 5000;
  census.num_households = 1950;
  auto data = GenerateCensus(census);
  CEXTEND_CHECK(data.ok());

  CcFamilyOptions cc_options;
  cc_options.num_ccs = 150;
  auto ccs = GenerateCcs(data.value(), cc_options);
  CEXTEND_CHECK(ccs.ok());
  std::vector<DenialConstraint> dcs = MakeCensusDcs(false);

  // The "curator": each CC answer gets Laplace(1/epsilon) noise (each person
  // contributes to one household, sensitivity 1 per count query).
  Rng rng(99);
  std::vector<CardinalityConstraint> noisy = *ccs;
  double scale = 1.0 / epsilon;
  for (CardinalityConstraint& cc : noisy) {
    cc.target = std::max<int64_t>(
        0, cc.target + static_cast<int64_t>(std::llround(
                           LaplaceNoise(rng, scale))));
  }

  std::printf(
      "Synthesizing linked data from %zu DP count answers (epsilon=%.2f)\n",
      noisy.size(), epsilon);
  auto solution = SolveCExtension(data->persons, data->housing, data->names,
                                  noisy, dcs, {});
  CEXTEND_CHECK(solution.ok()) << solution.status().ToString();

  // Consistency with the *published* (noisy) answers.
  auto vs_noisy = EvaluateCcError(noisy, solution->v_join);
  // Fidelity to the hidden true counts (bounded by the injected noise).
  auto vs_true = EvaluateCcError(*ccs, solution->v_join);
  auto dc_report = EvaluateDcError(dcs, solution->r1_hat, "hid");
  CEXTEND_CHECK(vs_noisy.ok() && vs_true.ok() && dc_report.ok());

  std::printf("consistency with published answers: %s\n",
              vs_noisy->Summary().c_str());
  std::printf("fidelity to hidden true counts:     %s\n",
              vs_true->Summary().c_str());
  std::printf("integrity: %s\n", dc_report->Summary().c_str());
  std::printf(
      "The released pair (persons_hat, housing_hat) satisfies every DC "
      "regardless of the noise level —\nthe noise only shows up as CC "
      "deviation, never as integrity violations.\n");
  return 0;
}
