// Snowflake-schema linking (paper Section 5.2, Example 5.6):
//
//     Students --major_id--> Majors --dept_id--> Departments
//     Students --course_id--> Courses
//
// The driver walks the links breadth-first from the fact table, carrying the
// accumulated join so later CCs may reference earlier B columns.
//
//   $ ./examples/snowflake_university

#include <cstdio>

#include "constraints/metrics.h"
#include "core/snowflake.h"
#include "util/rng.h"

using namespace cextend;

int main() {
  Rng rng(2024);
  SnowflakeProblem problem;
  problem.fact = "Students";

  Table students{Schema{{"sid", DataType::kInt64}, {"Year", DataType::kInt64}}};
  for (int i = 1; i <= 60; ++i) {
    CEXTEND_CHECK(
        students.AppendRow({Value(i), Value(rng.UniformInt(1, 4))}).ok());
  }
  problem.relations.push_back({"Students", std::move(students), "sid"});

  Table majors{Schema{{"mid", DataType::kInt64}, {"Field", DataType::kString}}};
  const char* fields[] = {"CS", "CS", "Math", "Physics", "History"};
  for (int i = 1; i <= 5; ++i) {
    CEXTEND_CHECK(majors.AppendRow({Value(i), Value(fields[i - 1])}).ok());
  }
  problem.relations.push_back({"Majors", std::move(majors), "mid"});

  Table courses{Schema{{"cid", DataType::kInt64}, {"Level", DataType::kString}}};
  CEXTEND_CHECK(courses.AppendRow({Value(1), Value("Intro")}).ok());
  CEXTEND_CHECK(courses.AppendRow({Value(2), Value("Advanced")}).ok());
  CEXTEND_CHECK(courses.AppendRow({Value(3), Value("Seminar")}).ok());
  problem.relations.push_back({"Courses", std::move(courses), "cid"});

  Table depts{Schema{{"did", DataType::kInt64}, {"Bldg", DataType::kString}}};
  CEXTEND_CHECK(depts.AppendRow({Value(1), Value("North")}).ok());
  CEXTEND_CHECK(depts.AppendRow({Value(2), Value("South")}).ok());
  CEXTEND_CHECK(depts.AppendRow({Value(3), Value("West")}).ok());
  problem.relations.push_back({"Departments", std::move(depts), "did"});

  // Step 1: 30 CS students, 12 Math students.
  {
    SnowflakeLink link{"Students", "major_id", "Majors", {}, {}};
    CardinalityConstraint cs;
    cs.name = "cs_students";
    cs.r2_condition.Eq("Field", Value("CS"));
    cs.target = 30;
    CardinalityConstraint math;
    math.name = "math_students";
    math.r2_condition.Eq("Field", Value("Math"));
    math.target = 12;
    link.ccs = {cs, math};
    problem.links.push_back(std::move(link));
  }
  // Step 2: CCs over Students ⋈ Majors ⋈ Courses (uses Field from step 1).
  {
    SnowflakeLink link{"Students", "course_id", "Courses", {}, {}};
    CardinalityConstraint cc;
    cc.name = "cs_in_advanced";
    cc.r1_condition.Eq("Field", Value("CS"));
    cc.r2_condition.Eq("Level", Value("Advanced"));
    cc.target = 18;
    link.ccs = {cc};
    problem.links.push_back(std::move(link));
  }
  // Step 3: Majors -> Departments with a DC: at most one CS major per
  // department.
  {
    SnowflakeLink link{"Majors", "dept_id", "Departments", {}, {}};
    DenialConstraint dc(2, "one CS major per department");
    dc.Unary(0, "Field", CompareOp::kEq, Value("CS"));
    dc.Unary(1, "Field", CompareOp::kEq, Value("CS"));
    link.dcs.push_back(std::move(dc));
    problem.links.push_back(std::move(link));
  }

  auto result = SolveSnowflake(problem, {});
  CEXTEND_CHECK(result.ok()) << result.status().ToString();

  const Table& completed_students = result->tables.at("Students");
  const Table& completed_majors = result->tables.at("Majors");
  std::printf("Students with imputed FKs:\n%s\n",
              completed_students.ToString(8).c_str());
  std::printf("Majors with imputed dept FK:\n%s\n",
              completed_majors.ToString(8).c_str());

  // Verify the step-3 DC.
  auto dc_report = EvaluateDcError(problem.links[2].dcs, completed_majors,
                                   "dept_id");
  CEXTEND_CHECK(dc_report.ok());
  std::printf("Step-3 %s\n", dc_report->Summary().c_str());
  for (size_t i = 0; i < result->link_stats.size(); ++i) {
    std::printf("link %zu: %s\n", i + 1,
                result->link_stats[i].Summary().c_str());
  }
  return 0;
}
