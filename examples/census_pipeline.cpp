// The full census pipeline at laptop scale: generate a census-like dataset
// (Persons with a missing household id, Housing), derive CC targets from the
// ground truth (as the paper derives them from the real data), strip the FK,
// re-synthesize it with the hybrid solver and compare against the baselines.
//
//   $ ./examples/census_pipeline [persons] [households] [num_ccs]

#include <cstdio>
#include <cstdlib>

#include "constraints/metrics.h"
#include "core/baseline.h"
#include "core/solver.h"
#include "datagen/census.h"
#include "datagen/constraint_gen.h"
#include "relational/csv.h"
#include "util/string_util.h"

using namespace cextend;
using namespace cextend::datagen;

int main(int argc, char** argv) {
  CensusOptions census;
  census.num_persons = argc > 1 ? static_cast<size_t>(atoll(argv[1])) : 5000;
  census.num_households =
      argc > 2 ? static_cast<size_t>(atoll(argv[2])) : 1950;
  size_t num_ccs = argc > 3 ? static_cast<size_t>(atoll(argv[3])) : 200;

  std::printf("Generating census-like data: %zu persons, %zu households\n",
              census.num_persons, census.num_households);
  auto data = GenerateCensus(census);
  CEXTEND_CHECK(data.ok()) << data.status().ToString();

  CcFamilyOptions cc_options;
  cc_options.num_ccs = num_ccs;
  cc_options.intersecting = false;
  auto ccs = GenerateCcs(data.value(), cc_options);
  CEXTEND_CHECK(ccs.ok()) << ccs.status().ToString();
  std::vector<DenialConstraint> dcs = MakeCensusDcs(/*good_only=*/false);
  std::printf("Constraints: %zu CCs (S_good family), %zu conjunctive DCs\n",
              ccs->size(), dcs.size());

  struct Contender {
    const char* name;
    StatusOr<Solution> solution;
  };
  SolverOptions options;
  std::vector<Contender> contenders;
  contenders.push_back(
      {"hybrid", SolveCExtension(data->persons, data->housing, data->names,
                                 *ccs, dcs, options)});
  contenders.push_back(
      {"baseline", SolveBaseline(data->persons, data->housing, data->names,
                                 *ccs, dcs, BaselineKind::kPlain, options)});
  contenders.push_back(
      {"baseline+marg",
       SolveBaseline(data->persons, data->housing, data->names, *ccs, dcs,
                     BaselineKind::kWithMarginals, options)});

  std::printf("\n%-14s %10s %10s %10s %10s %10s\n", "method", "cc_med",
              "cc_mean", "dc_err", "new_R2", "time");
  for (Contender& c : contenders) {
    CEXTEND_CHECK(c.solution.ok()) << c.solution.status().ToString();
    auto cc_report = EvaluateCcError(*ccs, c.solution->v_join);
    auto dc_report = EvaluateDcError(dcs, c.solution->r1_hat, "hid");
    CEXTEND_CHECK(cc_report.ok() && dc_report.ok());
    std::printf("%-14s %10.4f %10.4f %10.4f %10zu %10s\n", c.name,
                cc_report->median, cc_report->mean, dc_report->error,
                c.solution->stats.phase2.new_r2_tuples,
                FormatDuration(c.solution->stats.total_seconds).c_str());
  }

  // Persist the hybrid result for downstream tooling.
  const Solution& best = contenders[0].solution.value();
  CEXTEND_CHECK(WriteCsv(best.r1_hat, "persons_completed.csv").ok());
  CEXTEND_CHECK(WriteCsv(best.r2_hat, "housing_completed.csv").ok());
  std::printf(
      "\nWrote persons_completed.csv / housing_completed.csv\n"
      "Hybrid breakdown:\n%s",
      best.stats.BreakdownTable().c_str());
  return 0;
}
