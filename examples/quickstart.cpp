// Quickstart: the paper's running example (Figures 1-3).
//
// Build a Persons table with a missing household FK, a Housing table, four
// cardinality constraints on the join and five denial constraints on
// Persons, then let the solver impute the FK.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "constraints/metrics.h"
#include "core/solver.h"

using namespace cextend;

int main() {
  // ---- R1: Persons(pid, Age, Rel, MultiLing, hid) with hid missing. ----
  Schema persons_schema{{"pid", DataType::kInt64},
                        {"Age", DataType::kInt64},
                        {"Rel", DataType::kString},
                        {"MultiLing", DataType::kInt64},
                        {"hid", DataType::kInt64}};
  Table persons{persons_schema};
  struct Row {
    int64_t pid, age;
    const char* rel;
    int64_t multi;
  };
  for (const Row& r : std::initializer_list<Row>{
           {1, 75, "Owner", 0}, {2, 75, "Owner", 1}, {3, 25, "Owner", 0},
           {4, 25, "Owner", 1}, {5, 24, "Spouse", 0}, {6, 10, "Child", 1},
           {7, 10, "Child", 1}, {8, 30, "Owner", 0}, {9, 30, "Owner", 1}}) {
    CEXTEND_CHECK(persons
                      .AppendRow({Value(r.pid), Value(r.age), Value(r.rel),
                                  Value(r.multi), Value::Null()})
                      .ok());
  }

  // ---- R2: Housing(hid, Area). ----
  Table housing{Schema{{"hid", DataType::kInt64}, {"Area", DataType::kString}}};
  for (int64_t hid = 1; hid <= 6; ++hid) {
    CEXTEND_CHECK(
        housing.AppendRow({Value(hid), Value(hid <= 4 ? "Chicago" : "NYC")})
            .ok());
  }

  auto names = PairSchema::Infer(persons, housing, "pid", "hid", "hid");
  CEXTEND_CHECK(names.ok());

  // ---- Cardinality constraints (Figure 2b). ----
  std::vector<CardinalityConstraint> ccs(4);
  ccs[0].name = "CC1: 4 Chicago owners";
  ccs[0].r1_condition.Eq("Rel", Value("Owner"));
  ccs[0].r2_condition.Eq("Area", Value("Chicago"));
  ccs[0].target = 4;
  ccs[1].name = "CC2: 2 NYC owners";
  ccs[1].r1_condition.Eq("Rel", Value("Owner"));
  ccs[1].r2_condition.Eq("Area", Value("NYC"));
  ccs[1].target = 2;
  ccs[2].name = "CC3: 3 Chicagoans under 25";
  ccs[2].r1_condition.Le("Age", Value(int64_t{24}));
  ccs[2].r2_condition.Eq("Area", Value("Chicago"));
  ccs[2].target = 3;
  ccs[3].name = "CC4: 4 multi-lingual Chicagoans";
  ccs[3].r1_condition.Eq("MultiLing", Value(int64_t{1}));
  ccs[3].r2_condition.Eq("Area", Value("Chicago"));
  ccs[3].target = 4;

  // ---- Denial constraints (Figure 2a). ----
  std::vector<DenialConstraint> dcs;
  {
    DenialConstraint dc(2, "no two owners share a home");
    dc.Unary(0, "Rel", CompareOp::kEq, Value("Owner"));
    dc.Unary(1, "Rel", CompareOp::kEq, Value("Owner"));
    dcs.push_back(std::move(dc));
  }
  for (auto [name, op, off] :
       {std::tuple<const char*, CompareOp, int64_t>{
            "spouse >50y younger", CompareOp::kLt, -50},
        {"spouse >50y older", CompareOp::kGt, 50}}) {
    DenialConstraint dc(2, name);
    dc.Unary(0, "Rel", CompareOp::kEq, Value("Owner"));
    dc.Unary(1, "Rel", CompareOp::kEq, Value("Spouse"));
    dc.Binary(1, "Age", op, 0, "Age", off);
    dcs.push_back(std::move(dc));
  }
  for (auto [name, op, off] :
       {std::tuple<const char*, CompareOp, int64_t>{
            "child of multilingual owner too young", CompareOp::kLt, -50},
        {"child of multilingual owner too old", CompareOp::kGt, -12}}) {
    DenialConstraint dc(2, name);
    dc.Unary(0, "Rel", CompareOp::kEq, Value("Owner"));
    dc.Unary(0, "MultiLing", CompareOp::kEq, Value(int64_t{1}));
    dc.Unary(1, "Rel", CompareOp::kEq, Value("Child"));
    dc.Binary(1, "Age", op, 0, "Age", off);
    dcs.push_back(std::move(dc));
  }

  // ---- Solve. ----
  auto solution =
      SolveCExtension(persons, housing, names.value(), ccs, dcs, {});
  CEXTEND_CHECK(solution.ok()) << solution.status().ToString();

  std::printf("Completed R1 (hid imputed):\n%s\n",
              solution->r1_hat.ToString().c_str());
  auto cc_report = EvaluateCcError(ccs, solution->v_join);
  auto dc_report = EvaluateDcError(dcs, solution->r1_hat, "hid");
  CEXTEND_CHECK(cc_report.ok() && dc_report.ok());
  std::printf("%s\n%s\n", cc_report->Summary().c_str(),
              dc_report->Summary().c_str());
  std::printf("Runtime breakdown:\n%s",
              solution->stats.BreakdownTable().c_str());
  return 0;
}
