// The NP-hardness reduction of Proposition 2.8, executed: encode an NAE-3SAT
// formula as a C-Extension instance, run the (heuristic) solver, decode the
// Chosen column back into a boolean assignment and compare with brute force.
//
// The solver guarantees the DCs but may add artificial R2 tuples when its
// heuristics fail to find a proper 2-coloring — precisely the gap that makes
// the decision problem NP-hard.
//
//   $ ./examples/nae3sat_reduction [num_vars] [num_clauses] [seed]

#include <cstdio>
#include <cstdlib>

#include "constraints/metrics.h"
#include "core/solver.h"
#include "datagen/nae3sat.h"

using namespace cextend;
using namespace cextend::datagen;

int main(int argc, char** argv) {
  int num_vars = argc > 1 ? atoi(argv[1]) : 8;
  int num_clauses = argc > 2 ? atoi(argv[2]) : 12;
  uint64_t seed = argc > 3 ? static_cast<uint64_t>(atoll(argv[3])) : 7;

  Rng rng(seed);
  Nae3SatInstance instance = RandomNae3Sat(num_vars, num_clauses, rng);
  std::printf("NAE-3SAT instance: %d vars, %d clauses\n", num_vars,
              num_clauses);

  auto ground_truth = BruteForceNae(instance);
  std::printf("brute force: %s\n",
              ground_truth.has_value() ? "NAE-satisfiable"
                                       : "NOT NAE-satisfiable");

  auto enc = EncodeNae3Sat(instance);
  CEXTEND_CHECK(enc.ok()) << enc.status().ToString();
  std::printf("encoded as R1 with %zu rows, R2 with %zu rows, %zu DCs\n",
              enc->r1.NumRows(), enc->r2.NumRows(), enc->dcs.size());

  auto solution =
      SolveCExtension(enc->r1, enc->r2, enc->names, {}, enc->dcs, {});
  CEXTEND_CHECK(solution.ok()) << solution.status().ToString();

  auto dc_report = EvaluateDcError(enc->dcs, solution->r1_hat, "Chosen");
  CEXTEND_CHECK(dc_report.ok());
  std::printf("solver output: %s\n", dc_report->Summary().c_str());

  size_t added = solution->r2_hat.NumRows() - enc->r2.NumRows();
  if (added == 0) {
    // A clean completion decodes into a genuine NAE witness.
    auto decoded = DecodeAssignment(instance, solution->r1_hat);
    if (decoded.has_value() && IsNaeSatisfying(instance, *decoded)) {
      std::printf("solver found a proper completion -> decoded NAE witness: ");
      for (bool b : *decoded) std::printf("%d", b ? 1 : 0);
      std::printf("\n");
    } else {
      std::printf("completion decoded but is not a witness (heuristic)\n");
    }
  } else {
    std::printf(
        "solver added %zu artificial R2 tuples (heuristic could not 2-color"
        " the conflict graph%s)\n",
        added,
        ground_truth.has_value() ? "; a witness does exist"
                                 : " — none exists, as brute force confirms");
  }
  return 0;
}
